package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/system"
	"repro/internal/testutil/leakcheck"
)

// tinyConfig is a real simulation small enough to run in a few
// milliseconds; distinct seeds give distinct cache keys.
func tinyConfig(seed int64) system.Config {
	cfg := system.QuickConfig("blackscholes")
	cfg.Cores = 4
	cfg.AccessesPerCore = 1500
	cfg.WorkloadScale = 0.25
	cfg.Seed = seed
	return cfg
}

// fakeResults fabricates a result without simulating; fakes encode the
// seed in Cycles so tests can tell results apart.
func fakeResults(cfg system.Config) *system.Results {
	return &system.Results{Config: cfg, Cycles: uint64(cfg.Seed)}
}

func TestKeyStableAndSensitive(t *testing.T) {
	leakcheck.Check(t)
	a, err := Key(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key(tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config, different keys: %s vs %s", a, b)
	}
	c, _ := Key(tinyConfig(2))
	if a == c {
		t.Fatal("different seeds produced the same key")
	}
	cfg := tinyConfig(1)
	cfg.Coverage = 0.125
	d, _ := Key(cfg)
	if a == d {
		t.Fatal("different coverage produced the same key")
	}
}

func TestRunRealSimulationAndMemoryHit(t *testing.T) {
	leakcheck.Check(t)
	r := New(Options{Workers: 1})
	defer r.Close()
	res, err := r.Run(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("real simulation reported zero cycles")
	}
	again, err := r.Run(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != res.Cycles || again.EventsRun != res.EventsRun {
		t.Fatalf("memoized result diverged: %d cycles vs %d", again.Cycles, res.Cycles)
	}
	if again == res {
		t.Fatal("memory hit returned an aliased pointer instead of an isolated copy")
	}
	m := r.Metrics()
	if m.CacheHitsMemory != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics = %+v, want 1 memory hit and 1 miss", m)
	}
	if m.RunLatencyP50 <= 0 || m.RunLatencyP95 < m.RunLatencyP50 {
		t.Fatalf("implausible latency percentiles: p50=%v p95=%v", m.RunLatencyP50, m.RunLatencyP95)
	}
}

func TestDiskCachePersistsAcrossRunners(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	var executed atomic.Int64

	r1 := New(Options{Workers: 1, CacheDir: dir})
	r1.execute = func(cfg system.Config) (*system.Results, error) {
		executed.Add(1)
		return fakeResults(cfg), nil
	}
	res, err := r1.Run(context.Background(), tinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	if executed.Load() != 1 {
		t.Fatalf("executed %d times, want 1", executed.Load())
	}

	// A fresh runner (fresh memory cache, simulating a process restart)
	// must serve the same config from disk without executing.
	r2 := New(Options{Workers: 1, CacheDir: dir})
	defer r2.Close()
	r2.execute = func(cfg system.Config) (*system.Results, error) {
		t.Error("disk-cached config was re-executed")
		return fakeResults(cfg), nil
	}
	res2, err := r2.Run(context.Background(), tinyConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cycles != res.Cycles {
		t.Fatalf("disk result cycles = %d, want %d", res2.Cycles, res.Cycles)
	}
	if m := r2.Metrics(); m.CacheHitsDisk != 1 {
		t.Fatalf("disk hits = %d, want 1", m.CacheHitsDisk)
	}
}

func TestCorruptedCacheFileIsMiss(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := tinyConfig(3)
	key, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json!"), 0o644); err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	r := New(Options{Workers: 1, CacheDir: dir})
	r.execute = func(c system.Config) (*system.Results, error) {
		executed.Add(1)
		return fakeResults(c), nil
	}
	if _, err := r.Run(context.Background(), cfg); err != nil {
		t.Fatalf("corrupted cache entry crashed the run: %v", err)
	}
	m := r.Metrics()
	if executed.Load() != 1 || m.CacheMisses != 1 || m.CacheHitsDisk != 0 {
		t.Fatalf("corrupt entry not treated as a miss: executed=%d metrics=%+v", executed.Load(), m)
	}
	r.Close()

	// The successful run must have overwritten the corrupt file: a fresh
	// runner now hits disk.
	r2 := New(Options{Workers: 1, CacheDir: dir})
	defer r2.Close()
	r2.execute = func(c system.Config) (*system.Results, error) {
		t.Error("repaired cache entry was re-executed")
		return fakeResults(c), nil
	}
	if _, err := r2.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if m := r2.Metrics(); m.CacheHitsDisk != 1 {
		t.Fatalf("repaired entry not hit: %+v", m)
	}
}

func TestCancelledContextStopsSweepEarly(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var executed atomic.Int64
	r := New(Options{Workers: 1})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		if executed.Add(1) == 2 {
			cancel() // cancel mid-sweep, while job 2 is in flight
		}
		time.Sleep(5 * time.Millisecond)
		return fakeResults(cfg), nil
	}

	const total = 12
	cfgs := make([]system.Config, total)
	for i := range cfgs {
		cfgs[i] = tinyConfig(int64(i + 1))
	}
	err := r.RunAll(ctx, cfgs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAll error = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n >= total {
		t.Fatalf("cancellation did not stop the sweep: %d/%d configs simulated", n, total)
	}
}

func TestRunAllStopsOnFirstError(t *testing.T) {
	leakcheck.Check(t)
	var executed atomic.Int64
	r := New(Options{Workers: 1})
	defer r.Close()
	boom := errors.New("deterministic simulation failure")
	r.execute = func(cfg system.Config) (*system.Results, error) {
		if cfg.Seed == 1 {
			return nil, boom
		}
		executed.Add(1)
		time.Sleep(5 * time.Millisecond)
		return fakeResults(cfg), nil
	}

	const total = 10
	cfgs := make([]system.Config, total)
	for i := range cfgs {
		cfgs[i] = tinyConfig(int64(i + 1))
	}
	err := r.RunAll(context.Background(), cfgs)
	if !errors.Is(err, boom) {
		t.Fatalf("RunAll error = %v, want the simulation failure", err)
	}
	// The failing job is first in a one-worker queue; at most the next
	// job may have slipped in before the cancellation landed.
	if n := executed.Load(); n > 1 {
		t.Fatalf("%d healthy configs simulated after the failure, want <= 1", n)
	}
}

func TestTransientFailuresRetryThenSucceed(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	r := New(Options{Workers: 1, Retries: 2})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		if calls.Add(1) <= 2 {
			return nil, Transient(errors.New("flaky backend"))
		}
		return fakeResults(cfg), nil
	}
	j, err := r.Submit(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatalf("job failed despite retry budget: %v", err)
	}
	if got := j.Status().Attempts; got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if m := r.Metrics(); m.Retries != 2 {
		t.Fatalf("retries = %d, want 2", m.Retries)
	}
}

func TestPanicIsRecoveredAndRetried(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	r := New(Options{Workers: 1, Retries: 1})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		if calls.Add(1) == 1 {
			panic("simulated protocol bug")
		}
		return fakeResults(cfg), nil
	}
	if _, err := r.Run(context.Background(), tinyConfig(1)); err != nil {
		t.Fatalf("panic was not recovered and retried: %v", err)
	}

	// Without retry budget the panic surfaces as an error, not a crash.
	r2 := New(Options{Workers: 1})
	defer r2.Close()
	r2.execute = func(cfg system.Config) (*system.Results, error) {
		panic("always broken")
	}
	_, err := r2.Run(context.Background(), tinyConfig(2))
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error = %v, want a recovered panic", err)
	}
	if !IsTransient(err) {
		t.Fatal("recovered panic should classify as transient")
	}
}

func TestDeterministicErrorsAreNotRetried(t *testing.T) {
	leakcheck.Check(t)
	var calls atomic.Int64
	r := New(Options{Workers: 1, Retries: 5})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		calls.Add(1)
		return nil, errors.New("deadlock at cycle 100")
	}
	if _, err := r.Run(context.Background(), tinyConfig(1)); err == nil {
		t.Fatal("expected failure")
	}
	if calls.Load() != 1 {
		t.Fatalf("deterministic failure executed %d times, want 1", calls.Load())
	}
}

func TestTimeoutAbandonsRun(t *testing.T) {
	leakcheck.Check(t)
	r := New(Options{Workers: 1, Timeout: 10 * time.Millisecond})
	defer r.Close()
	release := make(chan struct{})
	r.execute = func(cfg system.Config) (*system.Results, error) {
		<-release
		return fakeResults(cfg), nil
	}
	defer close(release)
	_, err := r.Run(context.Background(), tinyConfig(1))
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("error = %v, want a timeout", err)
	}
}

func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	leakcheck.Check(t)
	var executed atomic.Int64
	r := New(Options{Workers: 4})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		executed.Add(1)
		time.Sleep(20 * time.Millisecond)
		return fakeResults(cfg), nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Run(context.Background(), tinyConfig(1)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if executed.Load() != 1 {
		t.Fatalf("identical config executed %d times, want 1", executed.Load())
	}
	if m := r.Metrics(); m.JobsCoalesced == 0 {
		t.Fatalf("coalesced counter = 0, want > 0: %+v", m)
	}
}

// TestCoalescedJobSurvivesFirstSubmitterCancel is the regression test for
// the coalescing cancellation bug: the job used to capture the *first*
// submitter's context, so that submitter cancelling killed every later
// submitter coalesced onto the same job.
func TestCoalescedJobSurvivesFirstSubmitterCancel(t *testing.T) {
	leakcheck.Check(t)
	started := make(chan struct{})
	release := make(chan struct{})
	r := New(Options{Workers: 1})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		close(started)
		<-release
		return fakeResults(cfg), nil
	}

	ctxA, cancelA := context.WithCancel(context.Background())
	jobA, err := r.Submit(ctxA, tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started // job is running under submitter A's interest

	jobB, err := r.Submit(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if jobA != jobB {
		t.Fatal("identical configs did not coalesce onto one job")
	}

	// A walks away mid-run; B must still get the result.
	cancelA()
	if _, err := jobA.Wait(ctxA); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	close(release)
	res, err := jobB.Wait(context.Background())
	if err != nil {
		t.Fatalf("second submitter's job failed after first cancelled: %v", err)
	}
	if res == nil || res.Cycles != 1 {
		t.Fatalf("second submitter got a bad result: %+v", res)
	}
}

// TestAllWaitersGoneCancelsQueuedJob: cancellation still works when every
// interested submitter is gone — a queued job with no live waiters must
// not burn a worker.
func TestAllWaitersGoneCancelsQueuedJob(t *testing.T) {
	leakcheck.Check(t)
	var executed atomic.Int64
	release := make(chan struct{})
	r := New(Options{Workers: 1})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		executed.Add(1)
		<-release
		return fakeResults(cfg), nil
	}

	// Occupy the single worker, then queue a job whose only two waiters
	// both cancel before it starts.
	blocker, err := r.Submit(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	ctxB, cancelB := context.WithCancel(context.Background())
	queued, err := r.Submit(ctxA, tinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if q2, err := r.Submit(ctxB, tinyConfig(2)); err != nil || q2 != queued {
		t.Fatalf("second submit did not coalesce: %v", err)
	}
	cancelA() // one waiter left — job must stay eligible
	select {
	case <-queued.Done():
		t.Fatal("job cancelled while a live waiter remained")
	case <-time.After(20 * time.Millisecond):
	}
	cancelB()                         // no waiters left — job should fail without executing
	time.Sleep(50 * time.Millisecond) // let the waiter monitor cancel the exec context
	close(release)
	<-queued.Done()
	if _, err := queued.Wait(context.Background()); err == nil {
		t.Fatal("orphaned queued job reported success")
	}
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 1 {
		t.Fatalf("orphaned job executed anyway: %d executions, want 1", executed.Load())
	}
}

// TestSubmitReplacesDeadInflightJob is the regression test for the dead
// coalesce-target bug: a queued job whose execution context was already
// cancelled (its last waiter left) lingers in the inflight table until a
// worker retires it, and a new submitter coalescing onto it would fail
// with "cancelled before start" even though its own context was live.
// Submit must detect the dead entry and replace it with a fresh job.
func TestSubmitReplacesDeadInflightJob(t *testing.T) {
	leakcheck.Check(t)
	var executed atomic.Int64
	release := make(chan struct{})
	r := New(Options{Workers: 1})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		executed.Add(1)
		<-release
		return fakeResults(cfg), nil
	}

	// Occupy the single worker so the victim job stays queued.
	blocker, err := r.Submit(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	dead, err := r.Submit(ctxA, tinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cancelA() // last waiter gone: the queued job's execCtx gets cancelled
	waitForExecCancelled(t, dead)

	// The dead job is still queued and still the inflight entry for its
	// key. A live submitter must get a fresh execution, not the corpse.
	fresh, err := r.Submit(context.Background(), tinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if fresh == dead {
		t.Fatal("Submit coalesced onto a job whose execution was already cancelled")
	}
	close(release)
	res, err := fresh.Wait(context.Background())
	if err != nil {
		t.Fatalf("fresh submission failed: %v", err)
	}
	if res == nil || res.Cycles != 2 {
		t.Fatalf("fresh submission got a bad result: %+v", res)
	}
	if _, err := dead.Wait(context.Background()); err == nil {
		t.Fatal("abandoned job reported success")
	}
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 2 {
		t.Fatalf("executions = %d, want 2 (blocker + fresh; never the dead job)", executed.Load())
	}
}

// waitForExecCancelled blocks until j's execution context is cancelled;
// the waiter monitor that cancels it runs on its own goroutine.
func waitForExecCancelled(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if j.execCtx.Err() != nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("job execution context was never cancelled")
}

// TestCacheHitResultsAreIsolated is the regression test for the
// cache-aliasing bug: every memory-cache hit used to share one *Results,
// so a caller mutating its result corrupted the cache for all future hits.
func TestCacheHitResultsAreIsolated(t *testing.T) {
	leakcheck.Check(t)
	r := New(Options{Workers: 1})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		res := fakeResults(cfg)
		res.EventsRun = 777
		res.FlitHopsByClass = map[string]int64{"data": 42}
		return res, nil
	}

	first, err := r.Run(context.Background(), tinyConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize everything the caller can reach, including the map.
	first.Cycles = 0
	first.EventsRun = 0
	first.FlitHopsByClass["data"] = -1

	second, err := r.Run(context.Background(), tinyConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cycles != 5 || second.EventsRun != 777 || second.FlitHopsByClass["data"] != 42 {
		t.Fatalf("mutation through an earlier result leaked into the cache: %+v", second)
	}
	// And the second hit must itself be isolated from the first.
	second.FlitHopsByClass["data"] = -2
	third, err := r.Run(context.Background(), tinyConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if third.FlitHopsByClass["data"] != 42 {
		t.Fatal("cache hits share one map between callers")
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	leakcheck.Check(t)
	var executed atomic.Int64
	r := New(Options{Workers: 1})
	r.execute = func(cfg system.Config) (*system.Results, error) {
		executed.Add(1)
		time.Sleep(2 * time.Millisecond)
		return fakeResults(cfg), nil
	}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := r.Submit(context.Background(), tinyConfig(int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	r.Close()
	if executed.Load() != 6 {
		t.Fatalf("Close drained %d jobs, want 6", executed.Load())
	}
	for _, j := range jobs {
		if s := j.Status(); s.State != StateDone {
			t.Fatalf("job %s state = %s after Close, want done", s.ID, s.State)
		}
	}
	if _, err := r.Submit(context.Background(), tinyConfig(99)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestJobLookupAndEvents(t *testing.T) {
	leakcheck.Check(t)
	var mu sync.Mutex
	var kinds []EventKind
	r := New(Options{Workers: 1, Events: func(e Event) {
		mu.Lock()
		kinds = append(kinds, e.Kind)
		mu.Unlock()
	}})
	defer r.Close()
	r.execute = func(cfg system.Config) (*system.Results, error) {
		return fakeResults(cfg), nil
	}
	j, err := r.Submit(context.Background(), tinyConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Job(j.ID())
	if !ok || got != j {
		t.Fatalf("Job(%q) lookup failed", j.ID())
	}
	s := j.Status()
	if s.State != StateDone || s.Workload != "blackscholes" || s.Cycles != 1 {
		t.Fatalf("unexpected status: %+v", s)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []EventKind{EventQueued, EventStarted, EventFinished}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
}
