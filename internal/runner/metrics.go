package runner

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyWindow keeps the most recent real-run latencies for percentile
// estimates; a fixed ring bounds memory on long-lived servers.
const latencyWindow = 1024

// counters is the runner's internal mutable metric state. Every counter is
// a lock-free atomic — hot-path increments must not contend on a mutex —
// and only the latency ring, whose three fields mutate together, takes a
// lock.
type counters struct {
	queued    atomic.Int64
	started   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	retries   atomic.Int64
	coalesced atomic.Int64

	hitsMemory atomic.Int64
	hitsDisk   atomic.Int64
	hitsPeer   atomic.Int64
	misses     atomic.Int64
	diskErrors atomic.Int64

	inFlight atomic.Int64

	latMu  sync.Mutex
	lats   [latencyWindow]time.Duration //stash:guardedby latMu
	latLen int                          //stash:guardedby latMu
	latPos int                          //stash:guardedby latMu
}

func (c *counters) recordLatency(d time.Duration) {
	c.latMu.Lock()
	c.lats[c.latPos] = d
	c.latPos = (c.latPos + 1) % latencyWindow
	if c.latLen < latencyWindow {
		c.latLen++
	}
	c.latMu.Unlock()
}

func (c *counters) percentiles() (p50, p95 time.Duration) {
	c.latMu.Lock()
	sorted := make([]time.Duration, c.latLen)
	copy(sorted, c.lats[:c.latLen])
	c.latMu.Unlock()
	if len(sorted) == 0 {
		return 0, 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.95)
}

// Metrics is a point-in-time snapshot of the runner's aggregate counters.
type Metrics struct {
	// Job lifecycle totals.
	JobsQueued    int64
	JobsStarted   int64
	JobsCompleted int64
	JobsFailed    int64
	// Retries counts re-attempts after transient failures.
	Retries int64
	// JobsCoalesced counts submissions that attached to an identical job
	// already queued or running instead of spawning their own.
	JobsCoalesced int64

	// Cache outcomes, judged at submission time. Peer hits are disk-store
	// entries populated by a different node sharing the cache directory.
	CacheHitsMemory int64
	CacheHitsDisk   int64
	CacheHitsPeer   int64
	CacheMisses     int64
	// CacheWriteErrors counts failed disk-cache persists (the run itself
	// still succeeds).
	CacheWriteErrors int64

	// InFlight is the number of workers currently simulating.
	InFlight int64
	// QueueDepth is the number of jobs queued but not yet started.
	QueueDepth int64

	// Latency percentiles over the last real (non-cached) runs.
	RunLatencyP50 time.Duration
	RunLatencyP95 time.Duration
}

// Metrics snapshots the runner's counters.
func (r *Runner) Metrics() Metrics {
	c := &r.met
	p50, p95 := c.percentiles()
	return Metrics{
		JobsQueued:       c.queued.Load(),
		JobsStarted:      c.started.Load(),
		JobsCompleted:    c.completed.Load(),
		JobsFailed:       c.failed.Load(),
		Retries:          c.retries.Load(),
		JobsCoalesced:    c.coalesced.Load(),
		CacheHitsMemory:  c.hitsMemory.Load(),
		CacheHitsDisk:    c.hitsDisk.Load(),
		CacheHitsPeer:    c.hitsPeer.Load(),
		CacheMisses:      c.misses.Load(),
		CacheWriteErrors: c.diskErrors.Load(),
		InFlight:         c.inFlight.Load(),
		QueueDepth:       int64(r.QueueDepth()),
		RunLatencyP50:    p50,
		RunLatencyP95:    p95,
	}
}

// CacheHits returns the combined memory+disk+peer hit count.
func (m Metrics) CacheHits() int64 { return m.CacheHitsMemory + m.CacheHitsDisk + m.CacheHitsPeer }
