// Package runner is the run-service job engine: it executes system.Config
// simulations on a bounded worker pool with context cancellation, per-job
// timeouts, panic recovery and bounded retry, in front of a two-level
// result cache (in-memory LRU backed by JSON files on disk) keyed by a
// stable hash of the canonicalized Config. Identical configs submitted
// concurrently coalesce onto one execution. Every job emits structured
// lifecycle events and aggregate counters, which cmd/stashd serves over
// HTTP and the experiment harness adapts into its progress callback.
//
// All entry points (Run, RunAll, Submit, Metrics, Job) are safe for
// concurrent use.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/system"
)

// DefaultMemoryEntries bounds the in-memory result cache when
// Options.MemoryEntries is zero.
const DefaultMemoryEntries = 4096

// UnlimitedMemory disables the in-memory LRU bound; the experiment harness
// uses it so a whole sweep stays memoized.
const UnlimitedMemory = -1

// maxRetainedJobs bounds how many finished jobs stay queryable by ID.
const maxRetainedJobs = 4096

// ErrClosed is returned by submissions after Close.
var ErrClosed = errors.New("runner: closed")

// Options configure a Runner. The zero value is usable: GOMAXPROCS
// workers, no timeout, no retries, no disk cache, a default-bounded
// memory cache, no event sink.
type Options struct {
	// Workers bounds concurrent simulations; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds one simulation attempt; 0 disables. A timed-out
	// simulation cannot be preempted — it is abandoned to finish in the
	// background while its job reports failure.
	Timeout time.Duration
	// Retries is how many times a transient failure (panic, or an error
	// wrapped with Transient) is re-attempted. Deterministic simulation
	// errors are never retried.
	Retries int
	// CacheDir, when non-empty, persists results as JSON files so
	// identical configs hit the cache across process restarts. Corrupt or
	// unreadable entries degrade to misses. A fleet of workers may share
	// one directory: writes are atomic, and entries record their Origin so
	// cross-worker hits surface as HitPeer.
	CacheDir string
	// Origin names this node in disk-cache entries it writes. Empty is
	// fine for a single-node server; a fleet gives each worker a distinct
	// origin so shared-store hits can be attributed (HitDisk vs HitPeer).
	Origin string
	// MemoryEntries bounds the in-memory LRU in front of the disk cache:
	// 0 selects DefaultMemoryEntries, UnlimitedMemory (< 0) removes the
	// bound.
	MemoryEntries int
	// Events, when non-nil, receives every lifecycle event. It is called
	// synchronously from runner goroutines and must be fast and
	// concurrency-safe.
	Events func(Event)
	// DisableCache turns the runner into a pure bounded-concurrency
	// executor: no memoization, no disk persistence, no coalescing of
	// identical submissions — every Submit simulates. The public facade
	// uses this so library callers keep run-every-call semantics while
	// sharing the pool, panic recovery and retry machinery.
	DisableCache bool
}

// State is a job's lifecycle position.
type State string

// Job states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is one submitted simulation. Identical configs submitted while a job
// is queued or running share that job.
//
// A job's execution is deliberately detached from any single submitter's
// context: each submitter registers as a waiter, and the job's execCtx is
// cancelled only when every cancellable waiter's context has been
// cancelled. One client disconnecting therefore cannot fail a coalesced
// job another client is still waiting on.
type Job struct {
	id  string
	key string
	cfg system.Config
	//stash:ignore ctxcheck the exec context is job-scoped by design: it must outlive any one submitter and is cancelled when the last waiter leaves
	execCtx context.Context
	cancel  context.CancelFunc
	done    chan struct{}

	mu         sync.Mutex
	waiters    int             //stash:guardedby mu
	state      State           //stash:guardedby mu
	enqueuedAt time.Time       //stash:guardedby mu
	startedAt  time.Time       //stash:guardedby mu
	finishedAt time.Time       //stash:guardedby mu
	attempts   int             //stash:guardedby mu
	cacheHit   string          //stash:guardedby mu
	result     *system.Results //stash:guardedby mu
	err        error           //stash:guardedby mu
}

// ID returns the job's runner-unique identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's config cache key.
func (j *Job) Key() string { return j.key }

// Config returns the job's configuration.
func (j *Job) Config() system.Config { return j.cfg }

// Done returns a channel closed when the job finishes.
func (j *Job) Done() <-chan struct{} { return j.done }

// waiter is one submitter's registration on a job. Dropping it is
// idempotent: a registration is released at most once, whether by its
// context monitor or by an explicit abort (RunAll's first-failure path),
// so the job's waiter count can never be decremented twice for one
// submitter.
type waiter struct {
	j    *Job
	once sync.Once
}

// drop releases this registration; the last live waiter to leave an
// unfinished job cancels its execution. Safe on a nil or empty handle.
func (w *waiter) drop() {
	if w == nil || w.j == nil {
		return
	}
	w.once.Do(w.j.dropWaiter)
}

// register records one submitter's interest in j and returns the handle
// that releases it. A nil handle means j is dead — its execution context
// was already cancelled (the last prior waiter left) while the job still
// sat in the queue — and the caller must not coalesce onto it. A finished
// job registers trivially (its result is already published) and returns a
// no-op handle. When ctx can be cancelled, a monitor goroutine drops the
// registration on cancellation; a context that can never be cancelled
// pins the job to completion. The liveness check and the waiter increment
// happen under j.mu, the same lock dropWaiter cancels under, so a
// registration can never land on a job in the instant its execution is
// being cancelled.
func (j *Job) register(ctx context.Context) *waiter {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		j.mu.Unlock()
		return &waiter{}
	}
	if j.execCtx != nil && j.execCtx.Err() != nil {
		j.mu.Unlock()
		return nil
	}
	j.waiters++
	j.mu.Unlock()
	w := &waiter{j: j}
	if ctx.Done() == nil {
		return w
	}
	go func() {
		select {
		case <-ctx.Done():
			w.drop()
		case <-j.done:
		}
	}()
	return w
}

// dropWaiter removes one registration; the last one out cancels the
// execution. Finished jobs are left untouched — their monitors can race
// completion (both select branches ready), and decrementing then would
// break the waiters >= 0 invariant. Cancelling under j.mu makes the
// decision atomic with register's liveness check.
func (j *Job) dropWaiter() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	if j.waiters > 0 {
		j.waiters--
	}
	if j.waiters == 0 && j.cancel != nil {
		j.cancel()
	}
}

// Wait blocks until the job finishes or ctx is cancelled. A cancelled wait
// abandons only this waiter; the job itself keeps running for others.
func (j *Job) Wait(ctx context.Context) (*system.Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.result, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// JobStatus is a serializable snapshot of a job, served by GET /jobs/{id}.
type JobStatus struct {
	ID         string    `json:"id"`
	Key        string    `json:"key"`
	State      State     `json:"state"`
	Workload   string    `json:"workload"`
	DirKind    string    `json:"dirKind"`
	Coverage   float64   `json:"coverage"`
	Cores      int       `json:"cores"`
	Attempts   int       `json:"attempts"`
	CacheHit   string    `json:"cacheHit,omitempty"`
	EnqueuedAt time.Time `json:"enqueuedAt"`
	StartedAt  time.Time `json:"startedAt"`
	FinishedAt time.Time `json:"finishedAt"`
	DurationMS float64   `json:"durationMs"`
	Cycles     uint64    `json:"cycles,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:         j.id,
		Key:        j.key,
		State:      j.state,
		Workload:   j.cfg.WorkloadName(),
		DirKind:    j.cfg.DirKind,
		Coverage:   j.cfg.Coverage,
		Cores:      j.cfg.Cores,
		Attempts:   j.attempts,
		CacheHit:   j.cacheHit,
		EnqueuedAt: j.enqueuedAt,
		StartedAt:  j.startedAt,
		FinishedAt: j.finishedAt,
	}
	if !j.startedAt.IsZero() && !j.finishedAt.IsZero() {
		s.DurationMS = float64(j.finishedAt.Sub(j.startedAt)) / float64(time.Millisecond)
	}
	if j.result != nil {
		s.Cycles = j.result.Cycles
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the runner retries it (up to Options.Retries).
// The runner classifies simulation panics as transient itself; execution
// backends with genuinely flaky failure modes wrap their errors with this.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Runner executes simulation jobs. Create one with New and release it with
// Close.
//
// Lock discipline: Runner.mu orders before Job.mu — submit registers waiters
// (which lock the job) while holding the runner lock, so the reverse nesting
// would deadlock. finish and process lock them strictly in sequence, never
// nested the other way.
//
//stash:lockorder Runner.mu < Job.mu
type Runner struct {
	opts Options
	// execute is the simulation backend; tests substitute it.
	execute func(system.Config) (*system.Results, error)

	mem  *memCache
	disk resultStore
	met  counters

	mu   sync.Mutex
	cond *sync.Cond
	// pending is the FIFO work queue; inflight maps key to its queued or
	// running job; jobs maps id to job (bounded retention); finished holds
	// finished job ids, oldest first; probes maps key to the in-flight
	// disk-cache probe for it (single-flight: one prober per key).
	pending  []*Job                //stash:guardedby mu
	inflight map[string]*Job       //stash:guardedby mu
	jobs     map[string]*Job       //stash:guardedby mu
	finished []string              //stash:guardedby mu
	probes   map[string]*diskProbe //stash:guardedby mu
	seq      int                   //stash:guardedby mu
	closed   bool                  //stash:guardedby mu
	wg       sync.WaitGroup
}

// diskProbe single-flights the unlocked disk-cache probe for one key: the
// first submitter of a key becomes the prober, identical submissions that
// race it park on done instead of probing (and possibly enqueueing) on
// their own. done is closed after the prober has published its outcome —
// a cache-completed job or an enqueued inflight job — under the runner
// lock, so woken waiters always find one of the two.
type diskProbe struct {
	done chan struct{}
}

// New starts a runner and its worker pool.
func New(opts Options) *Runner {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	memEntries := opts.MemoryEntries
	if memEntries == 0 {
		memEntries = DefaultMemoryEntries
	}
	if memEntries < 0 {
		memEntries = 0 // memCache treats non-positive as unlimited
	}
	r := &Runner{
		opts:     opts,
		execute:  system.Run,
		mem:      newMemCache(memEntries),
		inflight: make(map[string]*Job),
		jobs:     make(map[string]*Job),
		probes:   make(map[string]*diskProbe),
	}
	if opts.CacheDir != "" {
		r.disk = newDiskCache(opts.CacheDir, opts.Origin)
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

// Run submits cfg and waits for its result. Identical concurrent and past
// runs are shared through the job table and caches.
func (r *Runner) Run(ctx context.Context, cfg system.Config) (*system.Results, error) {
	j, err := r.Submit(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return j.Wait(ctx)
}

// RunAll executes a batch of independent configurations (deduplicated by
// cache key) and waits for all of them. The first failure synchronously
// abandons RunAll's registration on every job — cancelling each job that
// has no other waiter before another queued job can start — and RunAll
// returns that first error.
func (r *Runner) RunAll(ctx context.Context, cfgs []system.Config) error {
	if len(cfgs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	seen := make(map[string]bool, len(cfgs))
	var jobs []*Job
	var waiters []*waiter
	abort := func() {
		for _, w := range waiters {
			w.drop()
		}
	}
	for _, cfg := range cfgs {
		j, w, err := r.submit(ctx, cfg)
		if err != nil {
			abort() // synchronously cancel the already-queued jobs
			return err
		}
		if seen[j.key] {
			w.drop() // duplicate registration on a job already held above
			continue
		}
		seen[j.key] = true
		jobs = append(jobs, j)
		waiters = append(waiters, w)
	}

	errc := make(chan error, len(jobs))
	for _, j := range jobs {
		go func(j *Job) {
			_, err := j.Wait(ctx)
			errc <- err
		}(j)
	}
	var firstErr error
	for range jobs {
		//stash:blocking every Wait honors ctx, which the first failure cancels, so each waiter goroutine delivers exactly one result
		if err := <-errc; err != nil && firstErr == nil {
			firstErr = err
			cancel() // fail the remaining Waits promptly
			abort()  // synchronously cancel every job not shared with others
		}
	}
	return firstErr
}

// Submit enqueues cfg and returns its job without waiting. Cache hits
// return an already-finished job; an identical queued or running config
// returns that existing job.
func (r *Runner) Submit(ctx context.Context, cfg system.Config) (*Job, error) {
	j, _, err := r.submit(ctx, cfg)
	return j, err
}

// submit is Submit plus the waiter handle for the registration it made,
// letting RunAll abandon its jobs synchronously on first failure.
func (r *Runner) submit(ctx context.Context, cfg system.Config) (*Job, *waiter, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	key, err := Key(cfg)
	if err != nil {
		return nil, nil, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if !r.opts.DisableCache {
		if j, ok := r.inflight[key]; ok {
			if w := j.register(ctx); w != nil {
				r.met.coalesced.Add(1)
				r.mu.Unlock()
				return j, w, nil
			}
			// Dead entry: its execution was cancelled after the last
			// waiter left, but a worker has not retired it yet. Fall
			// through and build a fresh job; overwriting r.inflight[key]
			// below is safe because finish only deletes the entry while
			// it still points at the dead job.
		}
		if res, ok := r.mem.get(key); ok {
			j := r.completeFromCacheLocked(key, cfg, res, HitMemory)
			r.mu.Unlock()
			r.emitCached(j)
			return j, &waiter{}, nil
		}
	}

	if r.disk == nil || r.opts.DisableCache {
		// No persistent tier to probe: enqueue under the same lock that
		// ruled out coalescing, leaving no window for a duplicate.
		j, w := r.enqueueLocked(ctx, key, cfg)
		r.mu.Unlock()
		r.emit(Event{Kind: EventQueued, JobID: j.id, Key: key, Config: cfg})
		return j, w, nil
	}

	// The disk probe is file IO and happens outside the lock — but it is
	// single-flighted per key. The first submitter becomes the prober;
	// identical submissions racing it park on the probe instead of
	// slipping past the unlocked window and enqueueing a duplicate
	// multi-second simulation (a real cost once a fleet multiplies
	// submitters of the same sweep).
	for {
		p, ok := r.probes[key]
		if !ok {
			break // no probe in flight: become the prober
		}
		r.mu.Unlock()
		select {
		case <-p.done:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, nil, ErrClosed
		}
		// The prober published its outcome before closing done: an
		// inflight job to coalesce onto, or a cached result now in memory.
		if j, ok := r.inflight[key]; ok {
			if w := j.register(ctx); w != nil {
				r.met.coalesced.Add(1)
				r.mu.Unlock()
				return j, w, nil
			}
		}
		if res, ok := r.mem.get(key); ok {
			j := r.completeFromCacheLocked(key, cfg, res, HitMemory)
			r.mu.Unlock()
			r.emitCached(j)
			return j, &waiter{}, nil
		}
		// Neither survived (the job finished and its entry was evicted, or
		// a fresh probe started): loop, and probe ourselves if the slot is
		// free.
	}
	p := &diskProbe{done: make(chan struct{})}
	r.probes[key] = p
	r.mu.Unlock()

	res, origin, hit := r.disk.get(key)

	r.mu.Lock()
	delete(r.probes, key)
	if r.closed {
		r.mu.Unlock()
		close(p.done)
		return nil, nil, ErrClosed
	}
	if hit {
		r.mem.put(key, res)
		prov := HitDisk
		if origin != "" && origin != r.opts.Origin {
			// The entry was populated by another node sharing the store.
			prov = HitPeer
		}
		j := r.completeFromCacheLocked(key, cfg, res, prov)
		r.mu.Unlock()
		close(p.done)
		r.emitCached(j)
		return j, &waiter{}, nil
	}
	j, w := r.enqueueLocked(ctx, key, cfg)
	r.mu.Unlock()
	close(p.done)
	r.emit(Event{Kind: EventQueued, JobID: j.id, Key: key, Config: cfg})
	return j, w, nil
}

// enqueueLocked constructs, registers and queues a fresh job for key.
//
//stash:locked mu
func (r *Runner) enqueueLocked(ctx context.Context, key string, cfg system.Config) (*Job, *waiter) {
	j := r.newJobLocked(key, cfg, StateQueued)
	j.execCtx, j.cancel = context.WithCancel(context.Background())
	// Register before the job is published: no other goroutine can see j
	// yet, so the fresh execCtx cannot be cancelled and w is never nil.
	w := j.register(ctx)
	if !r.opts.DisableCache {
		r.inflight[key] = j
	}
	r.pending = append(r.pending, j)
	r.met.queued.Add(1)
	r.met.misses.Add(1)
	r.cond.Signal()
	return j, w
}

// Job returns a job by ID while it is queued, running, or among the most
// recently finished.
func (r *Runner) Job(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// QueueDepth reports how many jobs are queued but not yet picked up by a
// worker — the signal admission control (queue shedding) keys off.
func (r *Runner) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// Close stops accepting submissions and blocks until every queued and
// running job has drained. Queued jobs whose context is already cancelled
// finish immediately as failed; running simulations complete.
func (r *Runner) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.cond.Broadcast()
	}
	r.mu.Unlock()
	r.wg.Wait() //stash:blocking Close drains by contract: setting closed wakes every worker, queued jobs finish or fail fast
}

// newJobLocked constructs a job and publishes it in the job table. The
// initial state is part of construction: the table makes the job visible to
// Job/Status lookups, so mutating j.state after insertion would race them
// (a finding lockcheck surfaced once the fields were annotated).
//
//stash:locked mu
func (r *Runner) newJobLocked(key string, cfg system.Config, state State) *Job {
	r.seq++
	j := &Job{
		id:         fmt.Sprintf("job-%06d", r.seq),
		key:        key,
		cfg:        cfg,
		done:       make(chan struct{}),
		enqueuedAt: time.Now(),
		state:      state,
	}
	r.jobs[j.id] = j
	return j
}

// completeFromCacheLocked creates a job that is already done. The job gets
// a deep copy of the cached result: the cache retains sole ownership of
// its entry, so a caller mutating what it was handed cannot corrupt every
// future hit on the same key.
//
//stash:locked mu
func (r *Runner) completeFromCacheLocked(key string, cfg system.Config, res *system.Results, hit string) *Job {
	j := r.newJobLocked(key, cfg, StateDone)
	j.mu.Lock()
	j.cacheHit = hit
	j.result = res.Clone()
	j.finishedAt = j.enqueuedAt
	j.mu.Unlock()
	close(j.done)
	r.met.queued.Add(1)
	r.met.completed.Add(1)
	switch hit {
	case HitMemory:
		r.met.hitsMemory.Add(1)
	case HitPeer:
		r.met.hitsPeer.Add(1)
	default:
		r.met.hitsDisk.Add(1)
	}
	r.retainLocked(j)
	return j
}

// emitCached announces a cache-completed job. It runs after r.mu is
// released, so the job is visible to concurrent Status readers; snapshot
// the guarded fields under j.mu instead of reading them bare.
func (r *Runner) emitCached(j *Job) {
	j.mu.Lock()
	hit, res := j.cacheHit, j.result
	j.mu.Unlock()
	r.emit(Event{Kind: EventQueued, JobID: j.id, Key: j.key, Config: j.cfg, CacheHit: hit})
	r.emit(Event{Kind: EventFinished, JobID: j.id, Key: j.key, Config: j.cfg, CacheHit: hit, Result: res})
}

// retainLocked records a finished job and evicts the oldest beyond the
// retention bound so the job table cannot grow without limit.
//
//stash:locked mu
func (r *Runner) retainLocked(j *Job) {
	r.finished = append(r.finished, j.id)
	for len(r.finished) > maxRetainedJobs {
		delete(r.jobs, r.finished[0])
		r.finished = r.finished[1:]
	}
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.pending) == 0 && !r.closed {
			r.cond.Wait() //stash:blocking woken by Signal on every submit and Broadcast on Close; the pool owns this goroutine
		}
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return // closed and drained
		}
		j := r.pending[0]
		r.pending = r.pending[1:]
		r.mu.Unlock()
		r.process(j)
	}
}

// process runs one queued job to completion (or failure).
func (r *Runner) process(j *Job) {
	if err := j.execCtx.Err(); err != nil {
		r.finish(j, nil, fmt.Errorf("runner: job %s cancelled before start: %w", j.id, err), 0)
		return
	}
	start := time.Now()
	j.mu.Lock()
	j.state = StateRunning
	j.startedAt = start
	j.mu.Unlock()
	r.met.started.Add(1)
	r.met.inFlight.Add(1)
	defer r.met.inFlight.Add(-1)
	r.emit(Event{Kind: EventStarted, JobID: j.id, Key: j.key, Config: j.cfg})

	maxAttempts := 1 + r.opts.Retries
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var res *system.Results
	var err error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		j.mu.Lock()
		j.attempts = attempt
		j.mu.Unlock()
		res, err = r.runOnce(j)
		if err == nil || !IsTransient(err) || j.execCtx.Err() != nil || attempt == maxAttempts {
			break
		}
		r.met.retries.Add(1)
	}
	dur := time.Since(start)

	if err == nil {
		r.met.recordLatency(dur)
		if !r.opts.DisableCache {
			if r.disk != nil {
				if derr := r.disk.put(j.key, j.cfg, res); derr != nil {
					r.met.diskErrors.Add(1)
				}
			}
			r.mu.Lock()
			r.mem.put(j.key, res.Clone()) // the cache owns a private copy
			r.mu.Unlock()
		}
	}
	r.finish(j, res, err, dur)
}

// runOnce executes one simulation attempt with panic recovery, bounded by
// the job timeout and the submitter's context. The simulation itself is
// not preemptible: on timeout or cancellation the attempt's goroutine is
// abandoned (it finishes in the background and its result is discarded).
func (r *Runner) runOnce(j *Job) (*system.Results, error) {
	type outcome struct {
		res *system.Results
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{nil, Transient(fmt.Errorf("runner: simulation panicked: %v", p))}
			}
		}()
		res, err := r.execute(j.cfg)
		ch <- outcome{res, err}
	}()

	var timeoutC <-chan time.Time
	if r.opts.Timeout > 0 {
		t := time.NewTimer(r.opts.Timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timeoutC:
		return nil, fmt.Errorf("runner: job %s exceeded timeout %v", j.id, r.opts.Timeout)
	case <-j.execCtx.Done():
		return nil, j.execCtx.Err()
	}
}

// finish records the job's outcome, publishes it to waiters, and emits the
// terminal event.
func (r *Runner) finish(j *Job, res *system.Results, err error, dur time.Duration) {
	j.mu.Lock()
	j.finishedAt = time.Now()
	j.result = res
	j.err = err
	if err != nil {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	attempt := j.attempts
	j.mu.Unlock()
	close(j.done)
	if j.cancel != nil {
		j.cancel() // release the exec context and its waiter monitors
	}

	r.mu.Lock()
	if r.inflight[j.key] == j {
		delete(r.inflight, j.key)
	}
	r.retainLocked(j)
	r.mu.Unlock()

	if err != nil {
		r.met.failed.Add(1)
		r.emit(Event{Kind: EventFailed, JobID: j.id, Key: j.key, Config: j.cfg, Attempt: attempt, Duration: dur, Err: err})
	} else {
		r.met.completed.Add(1)
		r.emit(Event{Kind: EventFinished, JobID: j.id, Key: j.key, Config: j.cfg, Attempt: attempt, Duration: dur, Result: res})
	}
}
