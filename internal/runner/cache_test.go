package runner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/system"
	"repro/internal/testutil/leakcheck"
)

// TestDiskCachePutRemovesTempOnRenameFailure is the regression test for the
// temp-file orphan: a failed rename must clean up after itself, because in a
// fleet-shared cache directory the leak compounds across workers.
func TestDiskCachePutRemovesTempOnRenameFailure(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	d := newDiskCache(dir, "node-a")
	injected := errors.New("injected rename failure")
	d.rename = func(_, _ string) error { return injected }

	cfg := tinyConfig(1)
	key, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.put(key, cfg, fakeResults(cfg)); !errors.Is(err, injected) {
		t.Fatalf("put error = %v, want injected rename failure", err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("failed put orphaned temp files: %v", tmps)
	}
	if _, _, ok := d.get(key); ok {
		t.Fatal("failed put still produced a readable entry")
	}

	// The same writer succeeds once rename works again.
	d.rename = os.Rename
	if err := d.put(key, cfg, fakeResults(cfg)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.get(key); !ok {
		t.Fatal("entry unreadable after successful put")
	}
}

// TestDiskCacheOpenSweepsStaleTemps: opening a cache directory collects temp
// files orphaned by crashed writers — but only old ones, so the sweep cannot
// race a peer that is mid-write right now.
func TestDiskCacheOpenSweepsStaleTemps(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.tmp123")
	fresh := filepath.Join(dir, "cafef00d.tmp456")
	entry := filepath.Join(dir, "deadbeef.json")
	for _, p := range []string{stale, fresh, entry} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	newDiskCache(dir, "node-a")

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the open sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file (a possible live peer write) was removed: %v", err)
	}
	if _, err := os.Stat(entry); err != nil {
		t.Fatalf("real cache entry was removed: %v", err)
	}
}

// TestPeerHitProvenance: a node probing the shared store distinguishes its
// own entries (disk) from entries another node populated (peer).
func TestPeerHitProvenance(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cfg := tinyConfig(7)

	ra := New(Options{Workers: 1, CacheDir: dir, Origin: "worker-a"})
	ra.execute = func(c system.Config) (*system.Results, error) { return fakeResults(c), nil }
	if _, err := ra.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	ra.Close()

	// The writer itself, restarted, sees its own entry as a plain disk hit.
	ra2 := New(Options{Workers: 1, CacheDir: dir, Origin: "worker-a"})
	defer ra2.Close()
	ja, err := ra2.Submit(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ja.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if hit := ja.Status().CacheHit; hit != HitDisk {
		t.Fatalf("own entry reported as %q, want %q", hit, HitDisk)
	}

	// A different node sharing the directory sees a peer hit.
	rb := New(Options{Workers: 1, CacheDir: dir, Origin: "worker-b"})
	defer rb.Close()
	rb.execute = func(c system.Config) (*system.Results, error) {
		t.Error("peer node re-simulated a config already in the shared store")
		return fakeResults(c), nil
	}
	jb, err := rb.Submit(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := jb.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != fakeResults(cfg).Cycles {
		t.Fatalf("peer hit returned wrong result: %+v", res)
	}
	if hit := jb.Status().CacheHit; hit != HitPeer {
		t.Fatalf("cross-node entry reported as %q, want %q", hit, HitPeer)
	}
	if m := rb.Metrics(); m.CacheHitsPeer != 1 || m.CacheHits() != 1 {
		t.Fatalf("peer hit not counted: %+v", m)
	}
}

// slowStore delays every disk probe, holding the historical race window
// (submit's unlocked disk IO) open wide enough for tests to drive identical
// submissions through it deterministically.
type slowStore struct {
	inner resultStore
	delay time.Duration
	gets  atomic.Int64
}

func (s *slowStore) get(key string) (*system.Results, string, bool) {
	s.gets.Add(1)
	time.Sleep(s.delay)
	return s.inner.get(key)
}

func (s *slowStore) put(key string, cfg system.Config, res *system.Results) error {
	return s.inner.put(key, cfg, res)
}

// TestSubmitDiskProbeSingleFlight is the regression test for the Submit
// slip-past window: two identical submissions racing through the unlocked
// disk probe must coalesce onto one real run, not enqueue two.
func TestSubmitDiskProbeSingleFlight(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	r := New(Options{Workers: 4, CacheDir: dir})
	defer r.Close()
	store := &slowStore{inner: r.disk, delay: 50 * time.Millisecond}
	r.disk = store
	var executions atomic.Int64
	release := make(chan struct{})
	r.execute = func(c system.Config) (*system.Results, error) {
		executions.Add(1)
		<-release
		return fakeResults(c), nil
	}

	cfg := tinyConfig(3)
	const submitters = 8
	var wg sync.WaitGroup
	jobs := make([]*Job, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := r.Submit(context.Background(), cfg)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	close(release)
	for _, j := range jobs {
		if j == nil {
			t.Fatal("a submission failed")
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	if n := executions.Load(); n != 1 {
		t.Fatalf("identical racing submissions executed %d times, want 1", n)
	}
	if n := store.gets.Load(); n != 1 {
		t.Fatalf("disk probed %d times for one key, want 1 (single-flight)", n)
	}
	if m := r.Metrics(); m.JobsStarted != 1 {
		t.Fatalf("JobsStarted = %d, want 1", m.JobsStarted)
	}
}

// TestSubmitProbeWaiterHonorsCancellation: a submission parked behind
// another submitter's disk probe must honor its own context instead of
// waiting out the probe.
func TestSubmitProbeWaiterHonorsCancellation(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	r := New(Options{Workers: 1, CacheDir: dir})
	defer r.Close()
	r.disk = &slowStore{inner: r.disk, delay: 250 * time.Millisecond}
	r.execute = func(c system.Config) (*system.Results, error) { return fakeResults(c), nil }

	cfg := tinyConfig(4)
	go r.Submit(context.Background(), cfg) // the prober
	time.Sleep(20 * time.Millisecond)      // let it claim the probe slot

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := r.Submit(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("parked submit error = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Fatalf("cancelled waiter still waited %v for the probe", waited)
	}
}
