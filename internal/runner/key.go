package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/system"
)

// Key returns the canonical cache key of a configuration: the hex-encoded
// (truncated) SHA-256 of its canonical JSON encoding. Two configs produce
// the same key exactly when every field — workload selection, machine
// geometry, protocol knobs, seed — is equal, so a key identifies one
// deterministic simulation outcome. Keys are stable across processes and
// releases as long as the Config schema is unchanged, which is what lets
// the disk cache survive restarts.
func Key(cfg system.Config) (string, error) {
	// encoding/json emits struct fields in declaration order and Config
	// contains no maps, so the encoding is canonical.
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("runner: canonicalize config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}
