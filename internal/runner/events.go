package runner

import (
	"fmt"
	"time"

	"repro/internal/system"
)

// EventKind enumerates the lifecycle notifications a Runner emits.
type EventKind int

const (
	// EventQueued fires when a job is accepted (also for jobs satisfied
	// immediately from a cache, which queue and finish in one step).
	EventQueued EventKind = iota
	// EventStarted fires when a worker begins simulating a job.
	EventStarted
	// EventFinished fires when a job completes successfully, whether from
	// a cache (CacheHit non-empty) or from a real run (Duration set).
	EventFinished
	// EventFailed fires when a job exhausts its attempts, times out, or is
	// cancelled before running.
	EventFailed
)

// String returns the event name used in logs and metrics documentation.
func (k EventKind) String() string {
	switch k {
	case EventQueued:
		return "queued"
	case EventStarted:
		return "started"
	case EventFinished:
		return "finished"
	case EventFailed:
		return "failed"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one structured lifecycle notification. Events are delivered
// synchronously from runner goroutines: handlers must be fast and safe for
// concurrent calls.
type Event struct {
	Kind   EventKind
	JobID  string
	Key    string
	Config system.Config
	// Attempt is the 1-based attempt number (finished/failed events).
	Attempt int
	// CacheHit is HitMemory or HitDisk when the result came from a cache,
	// empty when it was simulated.
	CacheHit string
	// Duration is the wall-clock simulation time (zero for cache hits).
	Duration time.Duration
	// Result accompanies EventFinished.
	Result *system.Results
	// Err accompanies EventFailed.
	Err error
}

func (r *Runner) emit(e Event) {
	if r.opts.Events != nil {
		r.opts.Events(e)
	}
}
