package stashsim_test

import (
	"fmt"

	stashsim "repro"
)

// Example runs the paper's headline comparison at a small scale: the stash
// directory at 1/8 coverage against the conventional sparse baseline.
func Example() {
	run := func(kind string, coverage float64) *stashsim.Results {
		cfg := stashsim.QuickConfig("canneal")
		cfg.Cores = 4
		cfg.DirKind = kind
		cfg.Coverage = coverage
		cfg.AccessesPerCore = 2000
		cfg.WorkloadScale = 0.1
		res, err := stashsim.Run(cfg)
		if err != nil {
			panic(err)
		}
		return res
	}

	base := run(stashsim.DirSparse, 1)
	stash := run(stashsim.DirStash, 0.125)

	slowdown := float64(stash.Cycles) / float64(base.Cycles)
	fmt.Printf("stash at 1/8 size runs within 10%% of the full-size sparse baseline: %v\n", slowdown < 1.10)
	fmt.Printf("stash recall invalidations are rare: %v\n", stash.InvsRecall < base.InvsRecall)
	// Output:
	// stash at 1/8 size runs within 10% of the full-size sparse baseline: true
	// stash recall invalidations are rare: true
}

// ExampleConfig_customMix shows a user-defined sharing mix.
func ExampleConfig_customMix() {
	cfg := stashsim.QuickConfig("")
	cfg.Workload = ""
	cfg.Cores = 4
	cfg.AccessesPerCore = 1000
	cfg.CustomMix = &stashsim.Mix{
		Name:        "mine",
		PrivateFrac: 0.7, SharedReadFrac: 0.3,
		WriteFrac:     0.2,
		PrivateBlocks: 256, SharedBlocks: 128,
		ZipfS: 1.5,
	}
	res, err := stashsim.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Config.WorkloadName(), res.Loads+res.Stores == 4000)
	// Output:
	// mine true
}
