// Package stashsim is the public API of the Stash Directory reproduction:
// an event-driven 16-to-64-core CMP coherence simulator with pluggable
// directory organizations, built to reproduce
//
//	Socrates Demetriades and Sangyeun Cho,
//	"Stash Directory: A Scalable Directory for Many-Core Coherence",
//	HPCA 2014.
//
// The simulated machine is a tiled mesh CMP: per-core private MESI L1s, a
// shared inclusive banked LLC with a co-located directory slice per bank, a
// 2D-mesh NoC with XY routing and link contention, and a fixed-latency
// memory. Four directory organizations are provided: an ideal full-map
// directory, a conventional sparse directory (strict inclusion,
// back-invalidating), a cuckoo-hashed directory, and the paper's stash
// directory (relaxed inclusion with LLC hidden bits and discovery
// broadcasts).
//
// # Quick start
//
//	cfg := stashsim.DefaultConfig("canneal")
//	cfg.DirKind = stashsim.DirStash
//	cfg.Coverage = 0.125 // a directory 1/8 the aggregate L1 capacity
//	res, err := stashsim.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.Summary())
//
// Every run is deterministic in its Config (including Seed) and is checked
// end to end by a data-value oracle and quiescent-state invariant audits
// unless Config.Checker is disabled.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure and table in the paper's evaluation.
package stashsim

import (
	"context"
	"sync"

	"repro/internal/runner"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config describes one simulation; see the field documentation in
// internal/system. Construct it with DefaultConfig or QuickConfig and
// override fields as needed.
type Config = system.Config

// Results carries everything a run measured; experiment harnesses and
// examples read its fields directly.
type Results = system.Results

// Mix parameterizes a synthetic workload's sharing behavior; pass a custom
// one via Config.CustomMix.
type Mix = trace.Mix

// Directory organization names for Config.DirKind.
const (
	DirFullMap = system.DirFullMap
	DirSparse  = system.DirSparse
	DirStash   = system.DirStash
	DirStashSS = system.DirStashSS
	DirCuckoo  = system.DirCuckoo
)

// DefaultConfig returns the paper's 16-core model (32KB L1s, 16MB LLC,
// 4x4 mesh) running the named workload with the stash directory at 1x
// coverage.
func DefaultConfig(workload string) Config { return system.DefaultConfig(workload) }

// QuickConfig returns a proportionally scaled-down machine that preserves
// the full model's capacity ratios while running an order of magnitude
// faster; the benchmark harness uses it.
func QuickConfig(workload string) Config { return system.QuickConfig(workload) }

// facade is the process-wide execution pool behind Run: every entry point
// — this facade, the experiment harness, cmd/stashsim, cmd/stashd —
// executes simulations through internal/runner. The facade's instance
// disables caching so Run keeps its simulate-every-call semantics, and
// bounds concurrent simulations at GOMAXPROCS.
var facade struct {
	once sync.Once
	r    *runner.Runner
}

func facadeRunner() *runner.Runner {
	facade.once.Do(func() {
		facade.r = runner.New(runner.Options{DisableCache: true})
	})
	return facade.r
}

// Run builds the machine described by cfg, drives it to completion, and
// returns the collected results. It fails on configuration errors,
// protocol deadlock, value-oracle violations, or invariant-audit failures.
// Concurrent calls share a GOMAXPROCS-bounded worker pool.
func Run(cfg Config) (*Results, error) { return facadeRunner().Run(context.Background(), cfg) }

// Workloads returns the names of the built-in workload suite.
func Workloads() []string { return workloads.Names() }

// Workload returns the named built-in workload mix, for inspection or as a
// starting point for a custom one.
func Workload(name string) (Mix, error) { return workloads.Get(name) }

// DirKinds returns the accepted directory organization names.
func DirKinds() []string { return system.DirKinds() }
