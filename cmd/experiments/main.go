// Command experiments regenerates the paper's tables and figures (as
// reconstructed in DESIGN.md) and prints them as aligned text tables.
//
// Usage:
//
//	experiments                     # run everything at quick scale
//	experiments -full               # paper-size machine (slow)
//	experiments -only fig3,fig6     # a subset
//	experiments -workloads canneal,barnes
//
// Experiment ids: table1 table2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8
// fig9 table3 fig10 fig11 fig12 fig13 fig14 fig15.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/stats"
)

func main() {
	var (
		full      = flag.Bool("full", false, "use the paper-size machine instead of the quick one")
		only      = flag.String("only", "", "comma-separated experiment ids (default: all)")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		verbose   = flag.Bool("v", false, "print per-run progress")
		parallel  = flag.Int("j", -1, "concurrent simulations in sweeps (-1 = all cores)")
		cacheDir  = flag.String("cache-dir", "", "persist simulation results here so repeated invocations reuse them")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer prof.Stop()

	opts := experiments.Options{Quick: !*full, Parallel: *parallel, CacheDir: *cacheDir}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *verbose {
		opts.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	h := experiments.NewHarness(opts)

	type exp struct {
		id  string
		run func() (*stats.Table, error)
	}
	all := []exp{
		{"table1", func() (*stats.Table, error) { return h.Table1Config(), nil }},
		{"table2", h.Table2Workloads},
		{"fig1", func() (*stats.Table, error) { tb, _, err := h.Fig1PrivateFraction(); return tb, err }},
		{"fig2", func() (*stats.Table, error) { r, err := h.Fig2Invalidations(); return tableOf(r, err) }},
		{"fig3", func() (*stats.Table, error) { r, err := h.Fig3ExecTime(); return tableOf(r, err) }},
		{"fig4", func() (*stats.Table, error) { r, err := h.Fig4MissRate(); return tableOf(r, err) }},
		{"fig5", func() (*stats.Table, error) { r, err := h.Fig5Traffic(); return tableOf(r, err) }},
		{"fig5b", func() (*stats.Table, error) { return h.Fig5TrafficBreakdown(0.125) }},
		{"fig6", func() (*stats.Table, error) { tb, _, err := h.Fig6Discovery(); return tb, err }},
		{"fig7", func() (*stats.Table, error) { r, err := h.Fig7Energy(); return tableOf(r, err) }},
		{"fig7b", func() (*stats.Table, error) { r, err := h.Fig7EnergyTotal(); return tableOf(r, err) }},
		{"fig8", func() (*stats.Table, error) { tb, _, err := h.Fig8Associativity(); return tb, err }},
		{"fig9", func() (*stats.Table, error) { tb, _, err := h.Fig9Scaling(); return tb, err }},
		{"table3", h.Table3Occupancy},
		{"fig10", func() (*stats.Table, error) { r, err := h.Fig10Cuckoo(); return tableOf(r, err) }},
		{"fig11", h.Fig11Ablation},
		{"fig12", func() (*stats.Table, error) { tb, _, err := h.Fig12ProtocolVariants(); return tb, err }},
		{"fig13", func() (*stats.Table, error) { tb, _, err := h.Fig13EntryFormat(); return tb, err }},
		{"fig14", func() (*stats.Table, error) { tb, _, err := h.Fig14PrivateL2(); return tb, err }},
		{"fig15", func() (*stats.Table, error) { tb, _, err := h.Fig15ReplacementPolicy(); return tb, err }},
		{"scaling", func() (*stats.Table, error) { tb, _, err := h.ScalingStudy(); return tb, err }},
		{"scaling-recalls", h.ScalingRecalls},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, e := range all {
			known[e.id] = true
		}
		var unknown []string
		for id := range selected {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			valid := make([]string, len(all))
			for i, e := range all {
				valid[i] = e.id
			}
			fmt.Fprintf(os.Stderr, "experiments: unknown ids %v\nvalid ids: %s\n",
				unknown, strings.Join(valid, " "))
			prof.Exit(2)
		}
	}

	for _, e := range all {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		tb, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.id, err)
			prof.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", e.id, tb.CSV())
		} else {
			fmt.Printf("== %s ==\n%s\n", e.id, tb)
		}
	}
}

func tableOf(r *experiments.SweepResult, err error) (*stats.Table, error) {
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}
