// Command benchjson converts `go test -bench` text output (on stdin) into
// a structured JSON report. The raw text is teed through to stdout so the
// benchmark run stays visible in the terminal:
//
//	go test -bench BenchmarkEngine -benchmem ./internal/sim | benchjson -o BENCH_engine.json
//
// `make bench` uses it to record the engine's performance trajectory.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "output JSON file (default stdout only)")
	maxAllocs := flag.Float64("max-allocs", -1,
		"fail if any benchmark reports more than this many allocs/op (-1 disables)")
	maxAllocsFilter := flag.String("max-allocs-filter", "",
		"regexp restricting -max-allocs to matching benchmark names (empty = all); lets one run mix gated zero-alloc paths with allocating baselines")
	flag.Parse()

	var filter *regexp.Regexp
	if *maxAllocsFilter != "" {
		var err error
		if filter, err = regexp.Compile(*maxAllocsFilter); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -max-allocs-filter:", err)
			os.Exit(1)
		}
	}

	var buf bytes.Buffer
	if _, err := io.Copy(io.MultiWriter(&buf, os.Stdout), os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep, err := benchfmt.Parse(&buf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.GeneratedAt = time.Now().UTC().Truncate(time.Second)
	if *maxAllocs >= 0 {
		bad := false
		for _, b := range rep.Benchmarks {
			if filter != nil && !filter.MatchString(b.Name) {
				continue
			}
			if a, ok := b.Metrics["allocs/op"]; ok && a > *maxAllocs {
				fmt.Fprintf(os.Stderr, "benchjson: %s allocates %v allocs/op (max %v)\n",
					b.Name, a, *maxAllocs)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
