// Command stashmc model-checks the coherence protocol: it explores every
// reachable interleaving of a tiny configuration (see internal/mcheck) and
// reports the first violation with a minimal reproducing trace.
//
// Usage:
//
//	stashmc [-cores N] [-addrs N] [-kind K|all] [-depth N] [-states N]
//	        [-silent] [-threehop] [-dot FILE] [-table FILE [-check]]
//
// Exit status: 0 when every explored configuration is clean, 1 when a
// violation was found (or -check detected drift), 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/mcheck"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("stashmc", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		cores  = fs.Int("cores", 2, "number of cores (1-4)")
		addrs  = fs.Int("addrs", 1, "number of distinct blocks (1-4), all homed on bank 0")
		kind   = fs.String("kind", "all", "directory kind to explore ("+strings.Join(mcheck.Kinds(), ", ")+", or all)")
		depth  = fs.Int("depth", 0, "max injected stimuli per path (0 = unbounded, exact)")
		states = fs.Int("states", 0, "max distinct states (0 = default budget)")
		silent = fs.Bool("silent", false, "explore with silent clean evictions")
		three  = fs.Bool("threehop", false, "explore with three-hop forwarding")
		dot    = fs.String("dot", "", "write the explored state graph as Graphviz DOT to this file (single -kind only)")
		table  = fs.String("table", "", "regenerate the reachable-transition tables between markers in this file")
		check  = fs.Bool("check", false, "with -table: verify the file is up to date instead of rewriting it")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *table != "" {
		return runTable(out, *table, *check)
	}

	kinds := []string{*kind}
	if *kind == "all" {
		kinds = mcheck.Kinds()
	}
	if *dot != "" && len(kinds) != 1 {
		fmt.Fprintln(out, "stashmc: -dot needs a single -kind")
		return 2
	}

	status := 0
	for _, k := range kinds {
		cfg := mcheck.Config{
			Cores: *cores, Addrs: *addrs, Kind: k,
			MaxDepth: *depth, MaxStates: *states,
			SilentEvict: *silent, ThreeHop: *three,
			RecordEdges: *dot != "",
		}
		res, err := mcheck.Run(cfg)
		if err != nil {
			fmt.Fprintf(out, "stashmc: %v\n", err)
			return 2
		}
		fmt.Fprintln(out, res.Summary())
		for _, v := range res.Violations {
			fmt.Fprintln(out, v.String())
			status = 1
		}
		if *dot != "" {
			if err := os.WriteFile(*dot, []byte(renderDOT(res)), 0o644); err != nil {
				fmt.Fprintf(out, "stashmc: %v\n", err)
				return 2
			}
			fmt.Fprintf(out, "wrote %s (%d edges)\n", *dot, len(res.Edges))
		}
	}
	return status
}

// renderDOT renders the explored transition graph. Violating explorations
// still render: the graph is the debugging artifact.
func renderDOT(res *mcheck.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// stashmc state graph: %s\n", res.Summary())
	fmt.Fprintf(&b, "digraph mcheck {\n  rankdir=LR;\n  node [shape=circle, fontsize=8];\n")
	fmt.Fprintf(&b, "  s0 [shape=doublecircle];\n")
	for _, e := range res.Edges {
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q, fontsize=7];\n", e.From, e.To, e.Label)
	}
	b.WriteString("}\n")
	return b.String()
}
