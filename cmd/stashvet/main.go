// Command stashvet runs the repo's static-analysis suite: the three
// analyzers that turn the simulator's runtime invariants into build-time
// errors.
//
//	poolcheck    pooled values (coherence messages, TBEs, NoC envelopes)
//	             must be released or ownership-transferred on every path
//	hotpath      //stash:hotpath functions must not heap-allocate
//	determinism  simulation packages must not read wall clocks, draw from
//	             global math/rand, spawn goroutines, or iterate maps
//
// Usage:
//
//	stashvet [packages]
//
// With no arguments it checks ./... from the enclosing module root. Exit
// status is 1 if any diagnostic was reported, 2 on a load failure.
// Diagnostics are suppressed by an adjacent "//stash:ignore <analyzer>
// <reason>" comment; see DESIGN.md's "Static analysis" section.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/poolcheck"
)

var analyzers = []*analysis.Analyzer{
	poolcheck.Analyzer,
	hotpath.Analyzer,
	determinism.Analyzer,
}

func main() {
	flag.Usage = usage
	flag.Parse()
	os.Exit(analysis.Main(os.Stdout, analyzers, flag.Args()))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: stashvet [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}
