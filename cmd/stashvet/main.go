// Command stashvet runs the repo's static-analysis suite: the analyzers
// that turn the simulator's runtime invariants into build-time errors.
//
//	poolcheck    pooled values (coherence messages, TBEs, NoC envelopes)
//	             must be released or ownership-transferred on every path
//	hotpath      //stash:hotpath functions must not heap-allocate
//	determinism  simulation packages must not read wall clocks, draw from
//	             global math/rand, spawn goroutines, or iterate maps
//	lockcheck    //stash:guardedby fields only touched with their mutex
//	             held; unlock on every path; declared lock order respected
//	ctxcheck     blocking service-layer operations must be cancellable or
//	             annotated //stash:blocking; context.Context first in
//	             parameter lists and never stored in structs
//	chanleak     goroutine sends on locally-made channels need proven
//	             buffer capacity or a guaranteed receiver
//	sharecheck   tile isolation in the parallel engine: worker-reachable
//	             code writes only //stash:tileowned state; //stash:shared
//	             state is read-only unless mediated by a //stash:fold
//	atomiccheck  a field touched by function-style sync/atomic anywhere
//	             must be atomic everywhere (service layer)
//
// Usage:
//
//	stashvet [-run=analyzer[,analyzer]] [-json|-sarif] [-budget FILE] [packages]
//
// With no arguments it checks ./... from the enclosing module root. -run
// restricts the pass to a subset of analyzers by name; an unknown name is a
// usage error (exit 2). -json emits one diagnostic per line as NDJSON
// ({file, line, col, analyzer, message, suppressed}), including suppressed
// findings flagged as such; -sarif emits a SARIF 2.1.0 log instead (for
// code-review integrations); at most one output format may be selected. The
// exit code is unchanged by the format. -budget additionally enforces the
// directive budgets committed in FILE (//stash:ignore escapes for the
// concurrency analyzers, //stash:parallel sanctions, and //stash:fold +
// //stash:shared sanctions, counted over internal/ and cmd/).
//
// Exit status is 1 if any unsuppressed diagnostic was reported, 2 on a load
// or usage failure, and 3 when a directive budget is exceeded — distinct so
// CI can tell "fix the code" from "review the budget raise". Diagnostics
// are suppressed by an adjacent "//stash:ignore <analyzer> <reason>"
// comment; see DESIGN.md's "Static analysis" section.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/atomiccheck"
	"repro/internal/analysis/chanleak"
	"repro/internal/analysis/ctxcheck"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/poolcheck"
	"repro/internal/analysis/sharecheck"
)

var analyzers = []*analysis.Analyzer{
	poolcheck.Analyzer,
	hotpath.Analyzer,
	determinism.Analyzer,
	lockcheck.Analyzer,
	ctxcheck.Analyzer,
	chanleak.Analyzer,
	sharecheck.Analyzer,
	atomiccheck.Analyzer,
}

var (
	runFlag    = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonFlag   = flag.Bool("json", false, "emit NDJSON diagnostics (one per line, suppressed findings included)")
	sarifFlag  = flag.Bool("sarif", false, "emit a SARIF 2.1.0 log (suppressed findings included with an inSource suppression)")
	budgetFlag = flag.String("budget", "", "enforce the directive budgets committed in this file (exceeded = exit 3)")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	selected, err := analysis.Filter(analyzers, *runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonFlag && *sarifFlag {
		fmt.Fprintln(os.Stderr, "stashvet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	cfg := analysis.MainConfig{BudgetFile: *budgetFlag}
	switch {
	case *jsonFlag:
		cfg.Format = "json"
	case *sarifFlag:
		cfg.Format = "sarif"
	}
	os.Exit(analysis.MainWith(os.Stdout, selected, cfg, flag.Args()))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: stashvet [-run=analyzer[,analyzer]] [-json|-sarif] [-budget FILE] [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}
