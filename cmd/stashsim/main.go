// Command stashsim runs a single coherence simulation and prints its
// results.
//
// Usage:
//
//	stashsim -workload canneal -dir stash -coverage 0.125 [-cores 16] [-quick]
//
// Run with -list to see the available workloads and directory kinds.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	stashsim "repro"
	"repro/internal/profiling"
	"repro/internal/runner"
)

func main() {
	var (
		workload = flag.String("workload", "canneal", "workload name (see -list)")
		dirKind  = flag.String("dir", stashsim.DirStash, "directory organization (see -list)")
		coverage = flag.Float64("coverage", 1, "directory entries / aggregate L1 blocks")
		cores    = flag.Int("cores", 16, "core count (1,2,4,8,16,32,64,128,256)")
		dirWays  = flag.Int("dir-ways", 4, "directory associativity")
		accesses = flag.Int("accesses", 0, "accesses per core (0 = config default)")
		seed     = flag.Int64("seed", 1, "workload seed")
		quick    = flag.Bool("quick", false, "use the scaled-down quick machine")
		silent   = flag.Bool("silent-evictions", false, "drop clean L1 victims without notifying the directory")
		noCheck  = flag.Bool("no-checker", false, "disable the data-value oracle and audits")
		shards   = flag.Int("shards", 0, "parallel-engine worker count (0 = serial engine); implies -no-checker")
		sample   = flag.Uint64("sample-period", 20_000, "directory occupancy sampling period in cycles (0 = off)")
		traceDir = flag.String("trace-dir", "", "replay core<NN>.btrace (binary) or core<NN>.trace (text) files from this directory instead of a synthetic workload")
		jsonOut  = flag.Bool("json", false, "emit the full results as JSON instead of the text summary")
		cacheDir = flag.String("cache-dir", "", "reuse results from this disk cache directory (shared with stashd and experiments)")
		list     = flag.Bool("list", false, "list workloads and directory kinds, then exit")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "stashsim:", err)
		os.Exit(1)
	}
	defer prof.Stop()

	if *list {
		fmt.Printf("workloads:   %s\n", strings.Join(stashsim.Workloads(), " "))
		fmt.Printf("directories: %s\n", strings.Join(stashsim.DirKinds(), " "))
		return
	}

	cfg := stashsim.DefaultConfig(*workload)
	if *quick {
		cfg = stashsim.QuickConfig(*workload)
	}
	cfg.DirKind = *dirKind
	cfg.Coverage = *coverage
	cfg.Cores = *cores
	cfg.DirWays = *dirWays
	cfg.Seed = *seed
	cfg.SilentCleanEvictions = *silent
	cfg.Checker = !*noCheck
	cfg.Shards = *shards
	if *shards > 0 {
		// The oracle needs a global store order parallel tiles do not
		// share; Validate would reject the combination.
		cfg.Checker = false
	}
	cfg.SamplePeriod = *sample
	if *accesses > 0 {
		cfg.AccessesPerCore = *accesses
	}
	if *traceDir != "" {
		cfg.Workload = ""
		for c := 0; c < cfg.Cores; c++ {
			// Prefer a binary trace (tracegen -binary) when one exists;
			// fall back to the text format. Either replays identically —
			// system.Config sniffs the actual format by magic.
			path := filepath.Join(*traceDir, fmt.Sprintf("core%02d.btrace", c))
			if _, err := os.Stat(path); err != nil {
				path = filepath.Join(*traceDir, fmt.Sprintf("core%02d.trace", c))
			}
			cfg.TraceFiles = append(cfg.TraceFiles, path)
		}
	}

	// Execute through the shared run service so -cache-dir reuses (and
	// feeds) the same disk cache stashd and the experiment harness use,
	// and Ctrl-C cancels a queued run cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r := runner.New(runner.Options{Workers: 1, CacheDir: *cacheDir})
	defer r.Close()
	res, err := r.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stashsim:", err)
		r.Close()
		stop()
		prof.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "stashsim:", err)
			r.Close()
			stop()
			prof.Exit(1)
		}
		return
	}
	fmt.Print(res.Summary())
}
