// Command tracegen prints a workload's synthetic access stream, one access
// per line, for inspection or for feeding external tools:
//
//	tracegen -workload barnes -core 0 -n 20
//	tracegen -workload barnes -summary            # region/write statistics
//	tracegen -workload barnes -raw                # machine-readable format
//	tracegen -workload barnes -raw -binary        # compact binary format
//	tracegen -workload barnes -out traces/ -n 5000 -cores 16
//	                                              # one replayable file per core
//	tracegen -workload barnes -out traces/ -binary -cores 128
//	                                              # binary files (mmap replay)
//	tracegen -convert old.trace -o new.btrace     # text<->binary (by magic)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "canneal", "workload name")
		core     = flag.Int("core", 0, "core whose stream to generate")
		cores    = flag.Int("cores", 16, "total core count")
		n        = flag.Int("n", 100, "number of accesses")
		seed     = flag.Int64("seed", 1, "stream seed")
		scale    = flag.Float64("scale", 1, "working-set scale factor")
		summary  = flag.Bool("summary", false, "print region/write statistics instead of the raw stream")
		raw      = flag.Bool("raw", false, "emit the machine-readable trace format (L/S <hex-addr>)")
		binary   = flag.Bool("binary", false, "emit the compact binary trace format instead of text (with -raw, -out, or -convert)")
		out      = flag.String("out", "", "write one trace file per core into this directory")
		convert  = flag.String("convert", "", "convert this trace file between text and binary (direction auto-detected by magic; -binary forces binary output)")
		convOut  = flag.String("o", "", "output path for -convert (default stdout)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *convert != "" {
		if err := convertTrace(*convert, *convOut, *binary); err != nil {
			fail(err)
		}
		return
	}

	mix, err := workloads.Get(*workload)
	if err != nil {
		fail(err)
	}
	mix = mix.Scaled(*scale)

	// writeStream emits a stream in the selected on-disk format.
	writeStream := func(w io.Writer, st *trace.Stream) error {
		if *binary {
			return trace.WriteBinarySource(w, st)
		}
		return trace.WriteStream(w, st)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		ext := ".trace"
		if *binary {
			ext = ".btrace"
		}
		for c := 0; c < *cores; c++ {
			st, err := trace.NewStream(mix, c, *cores, *n, *seed)
			if err != nil {
				fail(err)
			}
			path := filepath.Join(*out, fmt.Sprintf("core%02d%s", c, ext))
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := writeStream(f, st); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
		fmt.Printf("wrote %d trace files to %s\n", *cores, *out)
		return
	}

	s, err := trace.NewStream(mix, *core, *cores, *n, *seed)
	if err != nil {
		fail(err)
	}

	if *raw || *binary {
		if err := writeStream(os.Stdout, s); err != nil {
			fail(err)
		}
		return
	}

	if *summary {
		regions := map[trace.Region]int{}
		writes, total := 0, 0
		blocks := map[uint64]bool{}
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			total++
			regions[trace.RegionOf(a.Block())]++
			blocks[uint64(a.Block())] = true
			if a.Write {
				writes++
			}
		}
		fmt.Printf("workload=%s core=%d accesses=%d distinct-blocks=%d write-ratio=%.3f\n",
			*workload, *core, total, len(blocks), float64(writes)/float64(total))
		for r := trace.RegionPrivate; r <= trace.RegionMigratory; r++ {
			fmt.Printf("  %-18s %6.3f\n", r, float64(regions[r])/float64(total))
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		fmt.Fprintf(w, "%s  region=%s\n", a, trace.RegionOf(a.Block()))
	}
}

// convertTrace rewrites a trace file in the other representation: binary
// input becomes text, text input becomes binary (or binary stays binary
// when -binary is forced — a normalizing re-encode).
func convertTrace(in, out string, forceBinary bool) (err error) {
	isBin, err := trace.IsBinaryTrace(in)
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	if isBin {
		bs, err := trace.OpenBinary(in)
		if err != nil {
			return err
		}
		defer bs.Close()
		var werr error
		if forceBinary {
			werr = trace.WriteBinarySource(w, bs)
		} else {
			werr = writeTextSource(w, bs)
		}
		if werr != nil {
			return werr
		}
		return bs.Err()
	}

	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	fs := trace.NewFileSource(f)
	if werr := trace.WriteBinarySource(w, fs); werr != nil {
		return werr
	}
	return fs.Err()
}

// writeTextSource drains any access source into the text trace format.
func writeTextSource(w io.Writer, s trace.Source) error {
	bw := bufio.NewWriter(w)
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		op := byte('L')
		if a.Write {
			op = 'S'
		}
		if _, err := fmt.Fprintf(bw, "%c %x\n", op, uint64(a.Addr)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
