// Command tracegen prints a workload's synthetic access stream, one access
// per line, for inspection or for feeding external tools:
//
//	tracegen -workload barnes -core 0 -n 20
//	tracegen -workload barnes -summary            # region/write statistics
//	tracegen -workload barnes -raw                # machine-readable format
//	tracegen -workload barnes -out traces/ -n 5000 -cores 16
//	                                              # one replayable file per core
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "canneal", "workload name")
		core     = flag.Int("core", 0, "core whose stream to generate")
		cores    = flag.Int("cores", 16, "total core count")
		n        = flag.Int("n", 100, "number of accesses")
		seed     = flag.Int64("seed", 1, "stream seed")
		scale    = flag.Float64("scale", 1, "working-set scale factor")
		summary  = flag.Bool("summary", false, "print region/write statistics instead of the raw stream")
		raw      = flag.Bool("raw", false, "emit the machine-readable trace format (L/S <hex-addr>)")
		out      = flag.String("out", "", "write one trace file per core into this directory")
	)
	flag.Parse()

	mix, err := workloads.Get(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	mix = mix.Scaled(*scale)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		for c := 0; c < *cores; c++ {
			st, err := trace.NewStream(mix, c, *cores, *n, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			path := filepath.Join(*out, fmt.Sprintf("core%02d.trace", c))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			if err := trace.WriteStream(f, st); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Printf("wrote %d trace files to %s\n", *cores, *out)
		return
	}

	s, err := trace.NewStream(mix, *core, *cores, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *raw {
		if err := trace.WriteStream(os.Stdout, s); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	if *summary {
		regions := map[trace.Region]int{}
		writes, total := 0, 0
		blocks := map[uint64]bool{}
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			total++
			regions[trace.RegionOf(a.Block())]++
			blocks[uint64(a.Block())] = true
			if a.Write {
				writes++
			}
		}
		fmt.Printf("workload=%s core=%d accesses=%d distinct-blocks=%d write-ratio=%.3f\n",
			*workload, *core, total, len(blocks), float64(writes)/float64(total))
		for r := trace.RegionPrivate; r <= trace.RegionMigratory; r++ {
			fmt.Printf("  %-18s %6.3f\n", r, float64(regions[r])/float64(total))
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		fmt.Fprintf(w, "%s  region=%s\n", a, trace.RegionOf(a.Block()))
	}
}
