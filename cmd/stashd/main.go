// Command stashd serves the stash-directory simulator as an HTTP run
// service: a bounded worker pool with a disk-backed result cache, so
// repeated sweeps — from any number of concurrent clients, across server
// restarts — simulate each configuration exactly once.
//
// Usage:
//
//	stashd [-addr :8344] [-cache-dir DIR] [-j N] [-job-timeout D] [-retries N]
//
// Endpoints:
//
//	POST /run        one simulation; body {"workload":"canneal","dir":"stash",...}
//	POST /sweep      workload x dirkind x coverage batch; streams JSON lines
//	GET  /jobs/{id}  job status
//	GET  /metrics    text-format counters (jobs, cache hits, latency percentiles)
//	GET  /healthz    liveness probe
//
// On SIGINT/SIGTERM the server stops accepting connections, lets in-flight
// requests finish, and drains the job queue before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/runner"
	"repro/internal/stashd"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		cacheDir   = flag.String("cache-dir", "stashd-cache", "disk result-cache directory (empty disables persistence)")
		workers    = flag.Int("j", -1, "concurrent simulations (-1 = all cores)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "per-simulation timeout (0 = none)")
		retries    = flag.Int("retries", 1, "retries for transient simulation failures")
		drain      = flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget for in-flight requests")
		verbose    = flag.Bool("v", false, "log every job lifecycle event")
	)
	flag.Parse()

	opts := runner.Options{
		Workers:  *workers,
		Timeout:  *jobTimeout,
		Retries:  *retries,
		CacheDir: *cacheDir,
	}
	if *verbose {
		opts.Events = func(e runner.Event) {
			switch e.Kind {
			case runner.EventFinished:
				hit := e.CacheHit
				if hit == "" {
					hit = "run"
				}
				log.Printf("%s %s %s/%s cov=%.4g (%s, %v)", e.JobID, e.Kind, e.Config.DirKind,
					e.Config.WorkloadName(), e.Config.Coverage, hit, e.Duration.Round(time.Millisecond))
			case runner.EventFailed:
				log.Printf("%s %s: %v", e.JobID, e.Kind, e.Err)
			}
		}
	}
	r := runner.New(opts)
	srv := &http.Server{Addr: *addr, Handler: stashd.NewServer(r)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("stashd listening on %s (workers=%d, cache=%q)", *addr, *workers, *cacheDir)

	select {
	case err := <-errc:
		log.Fatalf("stashd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("stashd: shutting down, draining in-flight jobs (budget %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("stashd: shutdown: %v", err)
	}
	r.Close() // waits for every queued and running job
	log.Printf("stashd: drained, bye")
}
