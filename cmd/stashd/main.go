// Command stashd serves the stash-directory simulator as an HTTP run
// service: a bounded worker pool with a disk-backed result cache, so
// repeated sweeps — from any number of concurrent clients, across server
// restarts — simulate each configuration exactly once.
//
// Usage:
//
//	stashd [-addr :8344] [-cache-dir DIR] [-j N] [-job-timeout D] [-retries N]
//	       [-rate N] [-burst N] [-max-queue N] [-origin NAME]
//	stashd -coordinator -workers URL,URL,... [-cache-dir DIR] [-rate N]
//	       [-max-pending N] [-max-per-worker N]
//
// The second form runs the fleet coordinator: no simulations execute in
// this process. /run and /sweep consistent-hash each job's canonical config
// key across the worker stashds, identical in-flight configs collapse to
// one dispatch fleet-wide, and -cache-dir (when it names the directory the
// workers share) lets the coordinator answer repeats from the shared store
// without dispatching at all.
//
// Endpoints (both modes):
//
//	POST /run        one simulation; body {"workload":"canneal","dir":"stash",...}
//	POST /sweep      workload x dirkind x coverage batch; streams JSON lines
//	GET  /metrics    text-format counters
//	GET  /healthz    liveness probe
//
// Worker mode additionally serves GET /jobs/{id} and POST /internal/run
// (the coordinator's dispatch format).
//
// On SIGINT/SIGTERM the server stops accepting connections, lets in-flight
// requests finish, and (in worker mode) drains the job queue before
// exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/runner"
	"repro/internal/stashd"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		cacheDir   = flag.String("cache-dir", "stashd-cache", "disk result-cache directory; in coordinator mode, the shared store to probe (empty disables)")
		workers    = flag.Int("j", -1, "concurrent simulations (-1 = all cores)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "per-simulation timeout (0 = none)")
		retries    = flag.Int("retries", 1, "retries for transient simulation failures")
		drain      = flag.Duration("drain-timeout", time.Minute, "graceful-shutdown budget for in-flight requests")
		verbose    = flag.Bool("v", false, "log every job lifecycle event")

		origin   = flag.String("origin", "", "node name recorded in shared-cache entries (default: hostname)")
		rate     = flag.Float64("rate", 0, "per-client admitted requests/sec on /run and /sweep, 429 beyond (0 = unlimited)")
		burst    = flag.Float64("burst", 0, "rate-limit token-bucket size (0 = max(1, 2*rate))")
		maxQueue = flag.Int("max-queue", 0, "shed with 503 when the job queue would exceed this depth (worker mode; 0 = unbounded)")

		coordinator  = flag.Bool("coordinator", false, "run as fleet coordinator: proxy jobs to -workers instead of simulating")
		workerURLs   = flag.String("workers", "", "comma-separated worker stashd base URLs (coordinator mode)")
		maxPending   = flag.Int("max-pending", 0, "shed with 503 when fleet-wide pending jobs would exceed this (coordinator mode; 0 = unbounded)")
		maxPerWorker = flag.Int("max-per-worker", 0, "outstanding dispatches per worker (coordinator mode; 0 = default)")
	)
	flag.Parse()

	var handler http.Handler
	var r *runner.Runner
	if *coordinator {
		var urls []string
		for _, u := range strings.Split(*workerURLs, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		co, err := fleet.NewCoordinator(fleet.CoordinatorOptions{
			Workers:      urls,
			StoreDir:     *cacheDir,
			MaxPerWorker: *maxPerWorker,
			MaxPending:   *maxPending,
			RatePerSec:   *rate,
			Burst:        *burst,
		})
		if err != nil {
			log.Fatalf("stashd: %v", err)
		}
		handler = co
		log.Printf("stashd coordinator: %d workers, store=%q", len(urls), *cacheDir)
	} else {
		nodeName := *origin
		if nodeName == "" {
			nodeName, _ = os.Hostname()
		}
		opts := runner.Options{
			Workers:  *workers,
			Timeout:  *jobTimeout,
			Retries:  *retries,
			CacheDir: *cacheDir,
			Origin:   nodeName,
		}
		if *verbose {
			opts.Events = func(e runner.Event) {
				switch e.Kind {
				case runner.EventFinished:
					hit := e.CacheHit
					if hit == "" {
						hit = "run"
					}
					log.Printf("%s %s %s/%s cov=%.4g (%s, %v)", e.JobID, e.Kind, e.Config.DirKind,
						e.Config.WorkloadName(), e.Config.Coverage, hit, e.Duration.Round(time.Millisecond))
				case runner.EventFailed:
					log.Printf("%s %s: %v", e.JobID, e.Kind, e.Err)
				}
			}
		}
		r = runner.New(opts)
		handler = stashd.NewServerWith(r, stashd.Options{
			RatePerSec: *rate,
			Burst:      *burst,
			MaxQueue:   *maxQueue,
		})
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if !*coordinator {
		log.Printf("stashd listening on %s (workers=%d, cache=%q)", *addr, *workers, *cacheDir)
	} else {
		log.Printf("stashd coordinator listening on %s", *addr)
	}

	select {
	case err := <-errc:
		log.Fatalf("stashd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("stashd: shutting down, draining in-flight jobs (budget %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("stashd: shutdown: %v", err)
	}
	if r != nil {
		r.Close() // waits for every queued and running job
	}
	log.Printf("stashd: drained, bye")
}
