// Benchmarks: one testing.B per table/figure of the paper's evaluation.
// Each bench regenerates its experiment at reduced scale (quick machine,
// three representative workloads, shortened streams) and reports the
// figure's key quantity via b.ReportMetric, so `go test -bench=.` both
// exercises the full experiment pipeline and prints the reproduced shape.
// cmd/experiments regenerates the same tables at full scale.
package stashsim_test

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/system"
)

// benchWorkloads is the representative subset used at bench scale: the most
// private workload, the most directory-hostile one, and a migratory one.
var benchWorkloads = []string{"blackscholes", "canneal", "barnes"}

func benchHarness(workloads ...string) *experiments.Harness {
	if len(workloads) == 0 {
		workloads = benchWorkloads
	}
	return experiments.NewHarness(experiments.Options{
		Quick:     true,
		Workloads: workloads,
		ConfigHook: func(c *system.Config) {
			c.AccessesPerCore = 6000
			c.WorkloadScale = 0.25
		},
	})
}

func covIndex(b *testing.B, r *experiments.SweepResult, cov float64) int {
	b.Helper()
	for i, c := range r.Coverages {
		if c == cov {
			return i
		}
	}
	b.Fatalf("coverage %v not in sweep", cov)
	return -1
}

func BenchmarkTable1Config(b *testing.B) {
	h := benchHarness()
	for i := 0; i < b.N; i++ {
		if tb := h.Table1Config(); len(tb.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if _, err := h.Table2Workloads(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PrivateFraction(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		_, vals, err := h.Fig1PrivateFraction()
		if err != nil {
			b.Fatal(err)
		}
		mean = vals["MEAN"]
	}
	b.ReportMetric(mean, "private-fraction")
}

func BenchmarkFig2Invalidations(b *testing.B) {
	var at8 float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		r, err := h.Fig2Invalidations()
		if err != nil {
			b.Fatal(err)
		}
		at8 = r.Geomean[system.DirSparse][covIndex(b, r, 0.125)]
	}
	b.ReportMetric(at8, "sparse-conflict-invs-per-1k-acc@1/8")
}

func BenchmarkFig3ExecTime(b *testing.B) {
	var stash8, sparse8 float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		r, err := h.Fig3ExecTime()
		if err != nil {
			b.Fatal(err)
		}
		stash8 = r.Geomean[system.DirStash][covIndex(b, r, 0.125)]
		sparse8 = r.Geomean[system.DirSparse][covIndex(b, r, 0.125)]
	}
	b.ReportMetric(stash8, "stash-normtime@1/8")
	b.ReportMetric(sparse8, "sparse-normtime@1/8")
}

func BenchmarkFig4MissRate(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		r, err := h.Fig4MissRate()
		if err != nil {
			b.Fatal(err)
		}
		v = r.Geomean[system.DirStash][covIndex(b, r, 0.125)]
	}
	b.ReportMetric(v, "stash-norm-missrate@1/8")
}

func BenchmarkFig5Traffic(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		r, err := h.Fig5Traffic()
		if err != nil {
			b.Fatal(err)
		}
		v = r.Geomean[system.DirStash][covIndex(b, r, 0.125)]
		if _, err := h.Fig5TrafficBreakdown(0.125); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(v, "stash-norm-traffic@1/8")
}

func BenchmarkFig6Discovery(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		_, means, err := h.Fig6Discovery()
		if err != nil {
			b.Fatal(err)
		}
		v = means[0.125]
	}
	b.ReportMetric(v, "discoveries-per-1k-llc@1/8")
}

func BenchmarkFig7Energy(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		r, err := h.Fig7Energy()
		if err != nil {
			b.Fatal(err)
		}
		v = r.Geomean[system.DirStash][covIndex(b, r, 0.125)]
		if _, err := h.Fig7EnergyTotal(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(v, "stash-norm-dir-energy@1/8")
}

func BenchmarkFig8Associativity(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		_, gm, err := h.Fig8Associativity()
		if err != nil {
			b.Fatal(err)
		}
		v = gm[system.DirStash][4]
	}
	b.ReportMetric(v, "stash-normtime@1/8-4way")
}

func BenchmarkFig9Scaling(b *testing.B) {
	var v64 float64
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		_, gm, err := h.Fig9Scaling()
		if err != nil {
			b.Fatal(err)
		}
		v64 = gm[system.DirStash][64]
	}
	b.ReportMetric(v64, "stash-normtime@1/8-64core")
}

func BenchmarkTable3Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if _, err := h.Table3Occupancy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Cuckoo(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		r, err := h.Fig10Cuckoo()
		if err != nil {
			b.Fatal(err)
		}
		v = r.Geomean[system.DirCuckoo][covIndex(b, r, 0.125)]
	}
	b.ReportMetric(v, "cuckoo-normtime@1/8")
}

func BenchmarkFig11Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		if _, err := h.Fig11Ablation(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12ProtocolVariants(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		_, gm, err := h.Fig12ProtocolVariants()
		if err != nil {
			b.Fatal(err)
		}
		v = gm[system.DirStash]["3hop/4mshr"]
	}
	b.ReportMetric(v, "stash-normtime@1/8-3hop-4mshr")
}

func BenchmarkFig13EntryFormat(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		_, gm, err := h.Fig13EntryFormat()
		if err != nil {
			b.Fatal(err)
		}
		v = gm["ptr2-B"]
	}
	b.ReportMetric(v, "stash-normtime@1/8-ptr2B")
}

func BenchmarkFig14PrivateL2(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		_, gm, err := h.Fig14PrivateL2()
		if err != nil {
			b.Fatal(err)
		}
		v = gm[system.DirStash][0.125]
	}
	b.ReportMetric(v, "stash-normtime@1/8-withL2")
}

func BenchmarkFig15ReplacementPolicy(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		h := benchHarness("canneal")
		_, gm, err := h.Fig15ReplacementPolicy()
		if err != nil {
			b.Fatal(err)
		}
		v = gm[system.DirStash]["random"]
	}
	b.ReportMetric(v, "stash-normtime@1/8-random-policy")
}
